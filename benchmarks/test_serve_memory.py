"""Paged / FineQ-quantized KV cache: memory and accuracy tracking.

The tentpole numbers of the paged-cache PR, asserted so they cannot
silently erode:

* the quantized cache stores a cached token in <= 1/4 the bytes of the
  FP32 paged cache (measured at the live-token high-water mark of a real
  engine run — ~4.7x in practice: 2.33-bit codes + FP16 scales give ~7x
  on full blocks, diluted by the FP32 current-block write buffers);
* wikitext-sim perplexity evaluated *through* the quantized cache stays
  within 5% of the FP32-cache engine on the 7B stand-in (the FP32 paged
  cache itself is numerically exact vs a full forward);
* decode tokens/sec at batch 64 on the paged cache is recorded alongside
  bytes/token, extending the PR 1 throughput table with the memory axis.
"""

import numpy as np
import pytest

from repro.eval.perplexity import cached_perplexity, eval_stream, perplexity
from repro.eval.tables import format_table
from repro.nn import PagedKVCache, QuantizedPagedKVCache
from repro.serve import GenerationEngine, bench_prompts, memory_sweep

#: Long generations so most tokens live in completed (quantizable) blocks.
MAX_NEW_TOKENS = 112
SEQ_LEN = 64


@pytest.fixture(scope="module")
def mem_report(zoo_7b):
    """paged/fineq at batch 16 plus paged batch {32, 64} points (the
    quantized sweep at large batches runs in the CLI, not tier-1)."""
    model = zoo_7b.model
    small = memory_sweep(model, max_new_tokens=MAX_NEW_TOKENS,
                         batch_sizes=(16,), modes=("paged", "fineq"))
    big = memory_sweep(model, max_new_tokens=MAX_NEW_TOKENS,
                       batch_sizes=(32, 64), modes=("paged",))
    points = small.points + big.points
    return small.__class__(model=small.model, block_size=small.block_size,
                           points=points)


def test_report_memory_table(mem_report):
    print("\n" + format_table(
        ["mode", "batch", "decode tok/s", "bytes/token", "allocated",
         "dense fp32"], mem_report.rows(),
        title="KV cache memory (llama-sim-7b)"))
    for point in mem_report.points:
        assert point.peak_cached_tokens > 0
        assert point.decode_tokens == point.num_sequences * (MAX_NEW_TOKENS - 1)


def test_quantized_cache_at_most_quarter_fp32_bytes_per_token(mem_report):
    fp32 = mem_report.point("paged", 16)
    quant = mem_report.point("fineq", 16)
    ratio = fp32.bytes_per_cached_token / quant.bytes_per_cached_token
    print(f"\nbytes/cached-token: fp32={fp32.bytes_per_cached_token:.1f} "
          f"fineq={quant.bytes_per_cached_token:.1f} ({ratio:.1f}x)")
    assert quant.bytes_per_cached_token <= fp32.bytes_per_cached_token / 4


def test_paged_allocation_tracks_live_tokens(zoo_7b):
    """On a mixed-length workload the paged pool allocates for the sum of
    live tokens; the rectangle pays batch x longest-row regardless."""
    model = zoo_7b.model
    prompts = bench_prompts(model.config.vocab_size, num=16,
                            max_prompt_len=16, min_prompt_len=8, seed=3)
    budgets = [MAX_NEW_TOKENS if i % 2 == 0 else 28
               for i in range(len(prompts))]

    def peak_allocated(mode):
        engine = GenerationEngine(model, max_batch_size=16, kv_cache=mode)
        for prompt, budget in zip(prompts, budgets):
            engine.submit(prompt, budget)
        engine.run()
        return engine.stats.kv_peak_allocated_bytes

    paged, dense = peak_allocated("paged"), peak_allocated("dense")
    print(f"\npeak allocated bytes: paged={paged:,} dense={dense:,}")
    assert paged < dense


def test_batch64_decode_throughput_recorded(mem_report):
    point = mem_report.point("paged", 64)
    assert point.batch_size == 64
    assert point.decode_tokens_per_s > 0
    assert point.peak_cached_tokens > 48 * MAX_NEW_TOKENS  # batch stayed full


def test_quantized_kv_perplexity_within_5_percent(zoo_7b):
    model = zoo_7b.model
    num_layers = model.config.num_layers
    stream = eval_stream(zoo_7b.tokenizer, "wikitext-sim")

    fp32 = cached_perplexity(model, stream, SEQ_LEN,
                             lambda b: PagedKVCache(num_layers, batch=b),
                             max_windows=16)
    quant = cached_perplexity(model, stream, SEQ_LEN,
                              lambda b: QuantizedPagedKVCache(num_layers,
                                                              batch=b),
                              max_windows=16)
    delta = abs(quant - fp32) / fp32
    print(f"\nwikitext-sim ppl through the cache: fp32={fp32:.4f} "
          f"fineq={quant:.4f} (delta {100 * delta:.2f}%)")
    assert delta <= 0.05

    # The FP32 paged cache itself is exact: same windows, same numbers as
    # a full teacher-forced forward.
    plain = perplexity(model, stream, SEQ_LEN, max_tokens=16 * SEQ_LEN + 1)
    np.testing.assert_allclose(fp32, plain, rtol=1e-6)
