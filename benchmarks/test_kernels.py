"""Micro-benchmarks of the core kernels (true pytest-benchmark timing).

These measure the software pipeline itself — quantization, packing,
decoding, temporal matmul — rather than regenerating a paper artifact.
"""

import numpy as np
import pytest

from repro.core import FineQQuantizer, pack_matrix, unpack_matrix
from repro.hw import TemporalCodingArray
from repro.quant import get_quantizer


@pytest.fixture(scope="module")
def big_weight():
    gen = np.random.default_rng(0)
    weight = gen.standard_normal((512, 512)).astype(np.float64) * 0.05
    weight[:, gen.choice(512, 10, replace=False)] *= 9.0
    return weight


def test_bench_fineq_quantize(benchmark, big_weight):
    quantizer = FineQQuantizer()
    dequantized, record = benchmark(quantizer.quantize_weight, big_weight)
    assert 2.3 < record.avg_bits < 2.5


def test_bench_rtn_quantize(benchmark, big_weight):
    quantizer = get_quantizer("rtn", bits=2)
    dequantized, _ = benchmark(quantizer.quantize_weight, big_weight)
    assert dequantized.shape == big_weight.shape


def test_bench_pack(benchmark, big_weight):
    quantizer = FineQQuantizer(channel_axis="output")
    _, artifacts = quantizer.quantize_with_artifacts(big_weight)
    packed = benchmark(pack_matrix, artifacts["codes"], artifacts["schemes"],
                       artifacts["scales"], big_weight.shape)
    assert packed.bits_per_weight < 2.5


def test_bench_unpack(benchmark, big_weight):
    quantizer = FineQQuantizer(channel_axis="output")
    _, artifacts = quantizer.quantize_with_artifacts(big_weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], big_weight.shape)
    codes, _, _ = benchmark(unpack_matrix, packed)
    assert np.array_equal(codes, artifacts["codes"])


def test_bench_temporal_matmul(benchmark):
    gen = np.random.default_rng(1)
    weights = gen.integers(-3, 4, size=(128, 128))
    activations = gen.standard_normal((128, 64))
    array = TemporalCodingArray()
    result = benchmark(array.run, weights, activations)
    np.testing.assert_allclose(result.output, weights @ activations)
