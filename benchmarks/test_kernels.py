"""Micro-benchmarks of the core kernels (true pytest-benchmark timing).

These measure the software pipeline itself — quantization, packing,
decoding, temporal matmul — rather than regenerating a paper artifact.
"""

import time

import numpy as np
import pytest

from repro.core import FineQQuantizer, pack_matrix, unpack_matrix
from repro.core.packing import decode_payload, decode_payload_bitwise
from repro.hw import TemporalCodingArray
from repro.quant import get_quantizer


@pytest.fixture(scope="module")
def big_weight():
    gen = np.random.default_rng(0)
    weight = gen.standard_normal((512, 512)).astype(np.float64) * 0.05
    weight[:, gen.choice(512, 10, replace=False)] *= 9.0
    return weight


def test_bench_fineq_quantize(benchmark, big_weight):
    quantizer = FineQQuantizer()
    dequantized, record = benchmark(quantizer.quantize_weight, big_weight)
    assert 2.3 < record.avg_bits < 2.5


def test_bench_rtn_quantize(benchmark, big_weight):
    quantizer = get_quantizer("rtn", bits=2)
    dequantized, _ = benchmark(quantizer.quantize_weight, big_weight)
    assert dequantized.shape == big_weight.shape


def test_bench_pack(benchmark, big_weight):
    quantizer = FineQQuantizer(channel_axis="output")
    _, artifacts = quantizer.quantize_with_artifacts(big_weight)
    packed = benchmark(pack_matrix, artifacts["codes"], artifacts["schemes"],
                       artifacts["scales"], big_weight.shape)
    assert packed.bits_per_weight < 2.5


def test_bench_unpack(benchmark, big_weight):
    quantizer = FineQQuantizer(channel_axis="output")
    _, artifacts = quantizer.quantize_with_artifacts(big_weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], big_weight.shape)
    codes, _, _ = benchmark(unpack_matrix, packed)
    assert np.array_equal(codes, artifacts["codes"])


def test_bench_payload_decode_lut(benchmark, big_weight):
    """Time the production (LUT) payload decode on a packed 512x512 matrix."""
    quantizer = FineQQuantizer(channel_axis="output")
    _, artifacts = quantizer.quantize_with_artifacts(big_weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], big_weight.shape)
    codes, _ = benchmark(decode_payload, packed.payload)
    assert np.array_equal(codes[:, :packed.num_clusters], artifacts["codes"])


def test_lut_decode_faster_than_bitwise_reference(big_weight):
    """The 64-entry pattern LUT must beat the per-bit unpackbits decode.

    Reported as a speedup so a regression in the hot unpack path (the
    serving engine's quantized-KV reads sit on it) fails loudly.  Timing
    is best-of-5 with re-measurement for scheduler noise.
    """
    quantizer = FineQQuantizer(channel_axis="output")
    _, artifacts = quantizer.quantize_with_artifacts(big_weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], big_weight.shape)

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(packed.payload)
            best = min(best, time.perf_counter() - start)
        return best

    decode_payload(packed.payload)          # warm both paths
    decode_payload_bitwise(packed.payload)
    speedup = 0.0
    for attempt in range(3):
        speedup = max(speedup,
                      best_of(decode_payload_bitwise) / best_of(decode_payload))
        if speedup >= 1.5:
            break
    print(f"\npayload decode: LUT is {speedup:.1f}x the bitwise reference")
    assert speedup >= 1.5, f"LUT decode only {speedup:.2f}x vs bitwise"


def test_block_resident_fineq_decode_beats_gather_at_1024_context():
    """Fused block-resident decode must beat gather-everything >= 1.5x.

    One decode step's attention reads at a 1024-token context, batch 16,
    on llama-sim-7b-shaped layers (5 layers, 4 heads, head_dim 32): the
    baseline re-gathers and re-dequantizes every owned block of every
    row per layer (the pre-change ``_context`` path, pinned here as the
    reference), the fused path iterates ``context_blocks`` through the
    warm dequant memo.  Timing is best-of with re-measurement, like the
    LUT decode benchmark above.
    """
    from repro.nn.block_attention import block_decode_attention
    from repro.nn.paged_kv_cache import QuantizedPagedKVCache

    layers, batch, heads, head_dim, bs = 5, 16, 4, 32, 16
    context = 1024
    rng = np.random.default_rng(42)
    cache = QuantizedPagedKVCache(layers, batch=batch, block_size=bs)
    rows = np.arange(batch)
    for layer in range(layers):
        k = rng.standard_normal((batch, heads, context, head_dim)) \
            .astype(np.float32)
        v = rng.standard_normal((batch, heads, context, head_dim)) \
            .astype(np.float32)
        cache.write_rows(layer, k, v, rows)
    q = rng.standard_normal((batch, heads, 1, head_dim)).astype(np.float32)
    kv_mask = np.zeros((batch, 1, 1, context), dtype=np.float32)
    scale = 1.0 / np.sqrt(head_dim)

    def gather_step():
        for layer in range(layers):
            k, v = cache._context(layer)
            scores = (q @ k.transpose(0, 1, 3, 2)) * scale + kv_mask
            shifted = scores - scores.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            out = (exp / exp.sum(axis=-1, keepdims=True)) @ v
        return out

    def fused_step():
        for layer in range(layers):
            out = block_decode_attention(q, cache, layer, kv_mask=kv_mask)
        return out

    # Warm both paths (BLAS, the dequant memo) and check they agree.
    reference, fused = gather_step(), fused_step()
    np.testing.assert_allclose(fused, reference, rtol=0, atol=1e-5)

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    speedup = 0.0
    for attempt in range(3):
        speedup = max(speedup, best_of(gather_step) / best_of(fused_step))
        if speedup >= 1.5:
            break
    print(f"\nfineq decode step: block-resident is {speedup:.1f}x the "
          f"gather path at a {context}-token context")
    assert speedup >= 1.5, f"block-resident only {speedup:.2f}x vs gather"


def test_bench_temporal_matmul(benchmark):
    gen = np.random.default_rng(1)
    weights = gen.integers(-3, 4, size=(128, 128))
    activations = gen.standard_normal((128, 64))
    array = TemporalCodingArray()
    result = benchmark(array.run, weights, activations)
    np.testing.assert_allclose(result.output, weights @ activations)
