"""Speculative decoding on the zoo: draft 3b, verify 13b, project 2x.

Wall-clock in the numpy simulator is roughly break-even — the
interpreter charges per *forward call*, not per FLOP, so the 4-layer
draft costs ~0.5x of the 7-layer target per call and eats most of what
acceptance buys.  The accelerator projection prices what the pipeline
actually moves: verify width is nearly free on a weight-load-dominated
decode step, the draft's GEMMs really are ~0.22x of the target's, and
one verify reads the KV context once per ~3.5 emitted tokens instead of
once per token.  On the FP16 ``baseline`` design, whose decode is
DMA-bound on exactly that KV traffic, the 3b→13b pair clears 2x at
batch 1–4; the ``fineq`` design has already shrunk the cache 4.7x, so
speculation only adds ~1.2x there — the two attack the same
memory-bound decode problem.

In-distribution prompts matter: zoo models only agree on corpus-like
text, and both extrapolate RoPE past their trained length, so
acceptance is measured at prompt_len 128 (0.78 with k=4; it falls to
~0.3 by context 440).
"""

import numpy as np
import pytest

from repro.eval.tables import format_table
from repro.hw.workloads import project_decode_trace
from repro.serve import GenerationEngine, SpeculativeConfig, corpus_prompts

TARGET = "llama-sim-13b"
DRAFT = "llama-sim-3b"
PROMPT_LEN = 128
NUM_PROMPTS = 8
MAX_NEW = 32
K = 4
BATCHES = (1, 2, 4)
MIN_PROJECTED_SPEEDUP = 2.0
MIN_ACCEPTANCE = 0.6


def serve(target, prompts, batch_size, speculative=None, kv_cache="paged"):
    engine = GenerationEngine(target, max_batch_size=batch_size,
                              kv_cache=kv_cache, record_trace=True,
                              speculative=speculative)
    ids = [engine.submit(p, MAX_NEW) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    return engine, [done[i].tokens for i in ids]


def projected_tok_s(engine, target, draft=None):
    """Accelerator decode tokens/sec on the FP16 baseline design."""
    decode_steps = [t for t in engine.trace if t.prefill_tokens == 0]
    projection = project_decode_trace(
        target.config, decode_steps, design="baseline",
        draft_config=None if draft is None else draft.config)
    return projection.tokens_per_s


@pytest.fixture(scope="module")
def spec_runs(zoo_all):
    """Target-only and speculative serves of one corpus wave per batch."""
    target = zoo_all[TARGET]
    draft = zoo_all[DRAFT]
    prompts = corpus_prompts(target.tokenizer, NUM_PROMPTS, PROMPT_LEN,
                             seed=0)
    spec = SpeculativeConfig(draft_model=draft.model, k=K)
    runs = {}
    for batch in BATCHES:
        base_engine, base_tokens = serve(target.model, prompts, batch)
        spec_engine, spec_tokens = serve(target.model, prompts, batch,
                                         speculative=spec)
        runs[batch] = {
            "base_engine": base_engine, "base_tokens": base_tokens,
            "spec_engine": spec_engine, "spec_tokens": spec_tokens,
            "base_proj": projected_tok_s(base_engine, target.model),
            "spec_proj": projected_tok_s(spec_engine, target.model,
                                         draft.model),
        }
    rows = []
    for batch, run in runs.items():
        stats = run["spec_engine"].stats
        rows.append([batch,
                     f"{run['spec_engine'].stats.decode_tokens_per_s:.1f}",
                     f"{stats.acceptance_rate:.2f}",
                     f"{run['base_proj']:.0f}",
                     f"{run['spec_proj']:.0f}",
                     f"{run['spec_proj'] / run['base_proj']:.2f}x"])
    print("\n" + format_table(
        ["batch", "wall tok/s", "accept", "proj base tok/s",
         "proj spec tok/s", "proj speedup"], rows,
        title=f"speculative decode {DRAFT} -> {TARGET} "
              f"(k={K}, ctx {PROMPT_LEN}, design=baseline)"))
    return runs


@pytest.mark.parametrize("batch", BATCHES)
def test_projected_speedup_at_least_2x(spec_runs, batch):
    """The tentpole target: >= 2x decode tok/s at batch <= 4 on the
    3b -> 13b pair, on the accelerator whose decode is DMA-bound."""
    run = spec_runs[batch]
    speedup = run["spec_proj"] / run["base_proj"]
    assert speedup >= MIN_PROJECTED_SPEEDUP, (
        f"batch {batch}: projected speedup {speedup:.2f}x "
        f"< {MIN_PROJECTED_SPEEDUP}x")


@pytest.mark.parametrize("batch", BATCHES)
def test_acceptance_rate_in_distribution(spec_runs, batch):
    stats = spec_runs[batch]["spec_engine"].stats
    assert stats.spec_proposed > 0
    assert stats.acceptance_rate >= MIN_ACCEPTANCE


@pytest.mark.parametrize("batch", BATCHES)
def test_speculative_greedy_output_identical(spec_runs, batch):
    """Speedup or not, the emitted streams must match target-only."""
    run = spec_runs[batch]
    for got, want in zip(run["spec_tokens"], run["base_tokens"]):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("batch", BATCHES)
def test_wall_clock_does_not_regress_badly(spec_runs, batch):
    """Honesty check on the simulator itself: speculation must stay in
    the break-even band on wall-clock (the draft's per-call interpreter
    overhead is ~0.5x of the target's, so 2x wall-clock is out of reach
    here — the projection above is where the pipeline pays off)."""
    run = spec_runs[batch]
    base = run["base_engine"].stats.decode_tokens_per_s
    spec = run["spec_engine"].stats.decode_tokens_per_s
    assert spec >= 0.5 * base


def test_fineq_spec_session_drains_pool(zoo_all):
    """After a speculative fineq serve (rollback churn against the
    quantized cache), every pool block is free with refcount zero."""
    target = zoo_all[TARGET]
    draft = zoo_all[DRAFT]
    prompts = corpus_prompts(target.tokenizer, 4, PROMPT_LEN, seed=1)
    spec = SpeculativeConfig(draft_model=draft.model, k=K,
                             draft_kv_cache="paged")
    engine, _ = serve(target.model, prompts, 2, speculative=spec,
                      kv_cache="fineq")
    for cache in (engine.cache, engine._spec.cache):
        assert cache.free_blocks() == cache._total_blocks
        for block in range(cache._total_blocks):
            assert cache.block_refcount(block) == 0
