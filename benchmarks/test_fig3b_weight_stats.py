"""Bench: regenerate Fig. 3(b) (weight stats + uniform bit-width cliff)."""

from repro.experiments import fig3b
from benchmarks.conftest import run_once


def test_fig3b_weight_stats(benchmark, zoo_7b):
    result = run_once(benchmark, fig3b.run)
    print("\n" + result.to_text())

    outlier_pct = result.row_by("Quantity", "outlier ratio (%)")[1]
    # A small minority of weights are outliers (paper: ~0.3%).
    assert 0.05 < outlier_pct < 5.0
    concentration = result.row_by(
        "Quantity", "top-5% channel concentration (%)")[1]
    # Outliers concentrate in few channels well beyond the 5% uniform share.
    assert concentration > 12.0

    ppl = {row[0]: row[1] for row in result.rows if "PPL" in row[0]}
    # 16 -> 3 bits: limited impact; 3 -> 2 bits: severe loss (Observation II).
    assert ppl["uniform 3b PPL"] < 5 * ppl["uniform 16b PPL"]
    assert ppl["uniform 2b PPL"] > 10 * ppl["uniform 3b PPL"]
