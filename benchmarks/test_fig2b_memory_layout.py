"""Bench: regenerate Fig. 2(b) (serving-memory layout)."""

from repro.experiments import fig2b
from benchmarks.conftest import run_once


def test_fig2b_memory_layout(benchmark):
    result = run_once(benchmark, fig2b.run)
    print("\n" + result.to_text())

    fp16 = result.row_by("Weights", "FP16")
    # Paper split: ~65% weights / ~30% KV / ~5% others.
    assert 55 <= fp16[4] <= 75
    assert 20 <= fp16[5] <= 40
    assert fp16[6] <= 15

    fineq = result.rows[1]
    # FineQ shrinks the weight pool by ~6.9x, flipping the balance.
    assert fineq[1] < fp16[1] / 6
    assert fineq[4] < fp16[4]
