"""Prefix-sharing serving: the asserted acceptance numbers.

With a 64-token shared prefix at batch 16:

* prefill forwards >= 4x fewer prompt tokens than the no-sharing engine
  (measured ~6x: one full prefill seeds the store, fifteen suffix-only
  prefills follow);
* resident bytes per cached token drop accordingly (the shared blocks
  are stored once however many rows read them);
* greedy output on the FP32 paged cache stays token-identical to
  sequential generate with sharing enabled — including after a
  preemption/restore cycle.
"""

import numpy as np
import pytest

from repro.eval.tables import format_table
from repro.serve import (GenerationEngine, SamplingParams, prefix_prompts,
                         prefix_sweep)

PREFIX_LEN = 64
BATCH = 16
MAX_NEW_TOKENS = 16


@pytest.fixture(scope="module")
def prefix_report(zoo_7b):
    return prefix_sweep(zoo_7b.model, prefix_len=PREFIX_LEN,
                        batch_size=BATCH, share_ratio=1.0,
                        max_new_tokens=MAX_NEW_TOKENS, project=True)


def test_report_prefix_table(prefix_report):
    print("\n" + format_table(
        ["mode", "sharing", "prefill tok", "avoided", "bytes/token",
         "decode tok/s", "accel tok/s"], prefix_report.rows(),
        title=f"prefix sharing (llama-sim-7b, {PREFIX_LEN}-token prefix, "
              f"batch {BATCH})"))
    for point in prefix_report.points:
        assert point.decode_tokens == BATCH * (MAX_NEW_TOKENS - 1)
        assert point.prompt_tokens > 0


@pytest.mark.parametrize("mode", ["paged", "fineq"])
def test_prefill_forwards_at_least_4x_fewer_tokens(prefix_report, mode):
    off = prefix_report.point(mode, sharing=False)
    on = prefix_report.point(mode, sharing=True)
    assert off.prefill_tokens == off.prompt_tokens  # baseline: no skipping
    ratio = off.prefill_tokens / on.prefill_tokens
    print(f"\n{mode}: prefill tokens {off.prefill_tokens} -> "
          f"{on.prefill_tokens} ({ratio:.1f}x fewer)")
    assert ratio >= 4.0
    # Every skipped token was served from the store.
    assert on.shared_prompt_tokens == on.prompt_tokens - on.prefill_tokens


def test_resident_bytes_per_cached_token_drop(prefix_report):
    # The 64 of ~72 prompt tokens are stored once instead of 16x.  FP32
    # blocks dominate the paged footprint, so it at least halves; the
    # quantized cache's shared blocks are already ~7x smaller while every
    # reader keeps a private FP32 write buffer (the exactness horizon),
    # which bounds its sharing gain lower.
    for mode, floor in (("paged", 2.0), ("fineq", 1.5)):
        off = prefix_report.point(mode, sharing=False)
        on = prefix_report.point(mode, sharing=True)
        ratio = (off.physical_bytes_per_cached_token
                 / on.physical_bytes_per_cached_token)
        print(f"\n{mode}: resident bytes/cached-token "
              f"{off.physical_bytes_per_cached_token:.1f} -> "
              f"{on.physical_bytes_per_cached_token:.1f} ({ratio:.1f}x)")
        assert ratio >= floor


def test_dequant_cache_hit_rate_above_90_percent(prefix_report):
    """With a 64-token shared prefix at batch 16, the fineq decode path
    serves >90% of its quantized-block reads from the dequant memo — a
    shared system-prompt block dequantizes once per step across all
    readers, and once ever while it stays resident."""
    for sharing in (False, True):
        point = prefix_report.point("fineq", sharing=sharing)
        print(f"\nfineq sharing={sharing}: dequant cache hit rate "
              f"{point.dequant_cache_hit_rate:.3f}")
    assert prefix_report.point("fineq", True).dequant_cache_hit_rate > 0.9


def test_accelerator_projection_attached(prefix_report):
    """The hw cycle model is wired to the engine trace: every point
    carries projected decode throughput for both designs."""
    for point in prefix_report.points:
        assert point.projected is not None
        for design in ("baseline", "fineq"):
            assert point.projected[design]["tokens_per_s"] > 0
        assert (point.projected["fineq"]["kv_dma_cycles"]
                <= point.projected["baseline"]["kv_dma_cycles"])


def test_sharing_greedy_parity_with_preemption_on_7b(zoo_7b):
    """Greedy parity with sharing enabled survives a preemption/restore
    cycle on the 7B stand-in."""
    model = zoo_7b.model
    prompts = prefix_prompts(model.config.vocab_size, num=4,
                             prefix_len=PREFIX_LEN, share_ratio=1.0,
                             suffix_len=6, seed=3)
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="paged",
                              scheduler="priority", prefix_sharing=True)
    ids = [engine.submit(p, params=SamplingParams(max_new_tokens=12,
                                                  priority=0))
           for p in prompts[:3]]
    for _ in range(4):
        engine.step()
    urgent = engine.submit(prompts[3],
                           params=SamplingParams(max_new_tokens=6,
                                                 priority=5))
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.preemptions >= 1
    assert engine.stats.shared_prompt_tokens >= PREFIX_LEN
    for rid, prompt, budget in zip(ids + [urgent], prompts,
                                   [12, 12, 12, 6]):
        want = model.generate(prompt, budget, temperature=0.0)
        np.testing.assert_array_equal(done[rid].tokens, want)
