"""Chunked prefill under mixed traffic: the asserted acceptance numbers.

With batch-16 short decoders streaming while four 384-token prompts
land mid-decode:

* p95 inter-token latency with ``prefill_chunk_tokens=128`` is at least
  2x better than one-shot prefill (measured ~3x: a one-shot step stalls
  every streaming request for the whole 384-token forward, a chunked
  step for at most 128 tokens);
* the completed tokens of every request are bit-identical between the
  two disciplines, on the FP32 paged cache and the quantized fineq
  cache alike — chunking is purely a latency knob;
* fineq chunked prefill re-reads earlier chunks' quantized blocks
  through the dequant memo, so its prefill-read hit rate is nonzero.
"""

import pytest

from repro.eval.tables import format_table
from repro.serve import mixed_latency_sweep

BATCH = 16
# Four long arrivals over 16-token decode streams keep the one-shot
# run's stall gaps well above the 5% tail the p95 reads (two longs over
# longer streams sit right at the boundary, where the percentile
# flickers between a stall gap and a plain decode gap).
NUM_LONG = 4
LONG_PROMPT_LEN = 384
MAX_NEW_TOKENS = 16
CHUNK = 128


#: Wall-clock assertions on shared CI runners are noisy; a losing
#: measurement is re-taken up to this many times before failing.
MAX_ATTEMPTS = 3


def measure(zoo):
    return mixed_latency_sweep(zoo.model, batch_size=BATCH,
                               num_long=NUM_LONG,
                               long_prompt_len=LONG_PROMPT_LEN,
                               max_new_tokens=MAX_NEW_TOKENS,
                               prefill_chunk_tokens=CHUNK)


@pytest.fixture(scope="module")
def latency_report(zoo_7b):
    return measure(zoo_7b)


def test_report_latency_table(latency_report):
    print("\n" + format_table(
        ["mode", "prefill", "inter-token ms", "p95 ms", "max ms",
         "p95 better", "chunks", "dequant hit"], latency_report.rows(),
        title=f"mixed traffic (llama-sim-7b, batch {BATCH}, "
              f"{NUM_LONG}x{LONG_PROMPT_LEN}-token long prompts)"))
    for point in latency_report.points:
        assert point.num_events > 0
        assert point.p95_inter_token_s > 0.0


@pytest.mark.parametrize("mode", ["paged", "fineq"])
def test_chunked_p95_at_least_2x_better_than_oneshot(zoo_7b, latency_report,
                                                     mode):
    report, best = latency_report, 0.0
    for attempt in range(MAX_ATTEMPTS):
        best = max(best, report.p95_ratio(mode))
        if best >= 2.0:
            break
        report = measure(zoo_7b)  # timing noise: measure again
    oneshot = report.point(mode, None)
    chunked = report.point(mode, CHUNK)
    print(f"\n{mode}: p95 inter-token "
          f"{1e3 * oneshot.p95_inter_token_s:.2f}ms -> "
          f"{1e3 * chunked.p95_inter_token_s:.2f}ms "
          f"(best {best:.1f}x better)")
    assert best >= 2.0, (
        f"{mode} chunked p95 only {best:.1f}x better after "
        f"{MAX_ATTEMPTS} attempts")
    # Chunking split the long prompts across steps and spread the budget.
    assert chunked.prefill_chunks > oneshot.prefill_chunks
    assert chunked.prefill_tokens_deferred > 0


def test_chunked_tokens_identical_to_oneshot(latency_report):
    """Every request finished with exactly the same tokens under both
    prefill disciplines, across both cache backends."""
    assert latency_report.tokens_identical


def test_fineq_chunked_prefill_hits_dequant_cache(latency_report):
    chunked = latency_report.point("fineq", CHUNK)
    print(f"\nfineq chunked prefill dequant hit rate "
          f"{chunked.prefill_dequant_hit_rate:.2f}")
    assert chunked.prefill_dequant_hit_rate > 0.0
