"""Serving-gateway overhead and latency: the asserted acceptance numbers.

On the trained 7B stand-in at batch 16:

* sustained gateway goodput (completed tokens per wall-clock second,
  saturated arrivals, sqlite journaling on) stays within 1.25x of the
  raw engine's — durability costs at most a quarter of throughput;
* every request completes through the gateway (goodput counts only
  ``completed`` jobs, so a dropped or wedged request fails the bound);
* first-token p99 under open-loop Poisson arrivals is reported, and is
  finite/ordered (p99 >= p50 > 0) — the number ``GET /metrics`` serves.
"""

import pytest

from repro.eval.tables import format_table
from repro.serve.gateway.bench import gateway_sweep

BATCH = 16
NUM_REQUESTS = 32
MAX_NEW_TOKENS = 16
LOAD = 0.7
OVERHEAD_BOUND = 1.25

#: Wall-clock assertions on shared CI runners are noisy; a losing
#: measurement is re-taken up to this many times before failing.
MAX_ATTEMPTS = 3


def measure(zoo):
    return gateway_sweep(zoo.model, num_requests=NUM_REQUESTS,
                         max_new_tokens=MAX_NEW_TOKENS, batch_size=BATCH,
                         load=LOAD)


@pytest.fixture(scope="module")
def gateway_report(zoo_7b):
    return measure(zoo_7b)


def test_report_gateway_table(gateway_report):
    print("\n" + format_table(
        ["path", "completed", "goodput tok/s", "first-token p50 ms",
         "p99 ms"], gateway_report.rows(),
        title=f"serving gateway (llama-sim-7b, {NUM_REQUESTS} requests x "
              f"{MAX_NEW_TOKENS} tokens, batch {BATCH})"))
    print(f"gateway overhead vs raw engine: "
          f"{gateway_report.overhead_ratio:.2f}x")
    for point in gateway_report.points:
        assert point.goodput_tokens_per_s > 0


def test_every_request_completes(gateway_report):
    for point in gateway_report.points:
        assert point.completed == point.num_requests, (
            f"{point.label}: only {point.completed}/{point.num_requests} "
            f"requests completed")
        assert point.generated_tokens \
            == point.num_requests * MAX_NEW_TOKENS


def test_gateway_goodput_within_bound_of_engine(zoo_7b, gateway_report):
    """Durable serving costs <= 25% throughput at batch 16."""
    report, best = gateway_report, float("inf")
    for _attempt in range(MAX_ATTEMPTS):
        best = min(best, report.overhead_ratio)
        if best <= OVERHEAD_BOUND:
            break
        report = measure(zoo_7b)  # timing noise: measure again
    print(f"\ngateway overhead best of attempts: {best:.2f}x "
          f"(bound {OVERHEAD_BOUND}x)")
    assert best <= OVERHEAD_BOUND, (
        f"gateway goodput {best:.2f}x worse than raw engine after "
        f"{MAX_ATTEMPTS} attempts (bound {OVERHEAD_BOUND}x)")


def test_poisson_first_token_latency_reported(gateway_report):
    point = gateway_report.point("gateway-poisson")
    print(f"\nPoisson (load {LOAD:.0%}) first-token "
          f"p50 {1e3 * point.first_token_p50_s:.1f}ms  "
          f"p99 {1e3 * point.first_token_p99_s:.1f}ms")
    assert point.first_token_p50_s > 0.0
    assert point.first_token_p99_s >= point.first_token_p50_s
