"""Bench: regenerate Table I (perplexity across models/methods/datasets).

Asserts the paper's qualitative shape: calibration-free single-precision
methods collapse at 2 bits, mixed-precision methods survive, and FineQ
stays within a small factor of FP16 at ~2.4 bits.
"""

from repro.experiments import table1
from benchmarks.conftest import run_once


def test_table1_perplexity(benchmark, zoo_all):
    result = run_once(benchmark, table1.run)
    print("\n" + result.to_text())

    fineq_means, owq_means = [], []
    for model_name in zoo_all:
        rows = {r[1]: r for r in result.rows if r[0] == model_name}
        wiki = {method: row[3] for method, row in rows.items()}
        fineq_means.append(wiki["fineq"])
        owq_means.append(wiki["owq"])

        # FP16 is the floor.
        assert wiki["fp16"] == min(wiki.values())
        # Calibration-free 2-bit methods are catastrophically bad.
        assert wiki["rtn"] > 10 * wiki["fp16"]
        assert wiki["uniform"] > 50 * wiki["fp16"]
        assert wiki["uniform"] > wiki["rtn"]
        # FineQ holds accuracy near FP16 ...
        assert wiki["fineq"] < 3.5 * wiki["fp16"]
        # ... and beats the calibration-free single-precision methods by a
        # wide margin at a close bit budget.
        assert wiki["fineq"] < wiki["rtn"] / 5
        # GPTQ's error compensation is disproportionately strong at this
        # substrate scale (see EXPERIMENTS.md deviations); FineQ must stay
        # within a small factor of it without any calibration data at all.
        assert wiki["fineq"] < 1.5 * wiki["gptq"]
        # FineQ never trails OWQ by more than the substrate noise margin.
        assert wiki["fineq"] < 1.25 * wiki["owq"]

        bits = {method: row[2] for method, row in rows.items()}
        assert 2.3 < bits["fineq"] < 2.6
        assert bits["owq"] < bits["fineq"] < bits["pb-llm"]

    # Aggregate headline: FineQ clearly ahead of OWQ across the zoo.
    assert sum(fineq_means) < 0.5 * sum(owq_means)
