"""Bench: regenerate Fig. 8 (FineQ PE-array power split)."""

import numpy as np

from repro.experiments import fig8
from benchmarks.conftest import run_once


def test_fig8_power_breakdown(benchmark):
    result = run_once(benchmark, fig8.run)
    print("\n" + result.to_text())
    split = result.meta["split"]
    paper = result.meta["paper"]
    for component in ("acc", "pe_array", "temporal_encoder"):
        assert np.isclose(split[component], paper[component], atol=0.01)
    # The ACC adder trees dominate; the encoder is marginal.
    assert split["acc"] > 0.6
    assert split["temporal_encoder"] < 0.05
