"""Benchmark fixtures: ensure the model zoo is trained and cached."""

import pytest

from repro.models import load_model


@pytest.fixture(scope="session")
def zoo_7b():
    """The 7B stand-in (trains on first use, then loads from cache)."""
    return load_model("llama-sim-7b")


@pytest.fixture(scope="session")
def zoo_all():
    return {name: load_model(name)
            for name in ("llama-sim-3b", "llama-sim-7b", "llama-sim-13b")}


def run_once(benchmark, fn, *args, **kwargs):
    """pytest-benchmark wrapper for heavy experiments: a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
