"""Bench: regenerate Table II (sequence-length sensitivity on the 7B)."""

from repro.experiments import table2
from benchmarks.conftest import run_once


def test_table2_seqlen(benchmark, zoo_7b):
    result = run_once(benchmark, table2.run)
    print("\n" + result.to_text())

    seq_lengths = result.meta["seq_lengths"]
    for seq_len in seq_lengths:
        rows = {r[1]: r for r in result.rows if r[0] == seq_len}
        wiki = {m: row[3] for m, row in rows.items()}
        # FineQ consistently outperforms the single-precision baselines
        # at every sequence length (the paper's robustness claim).
        assert wiki["fineq"] < wiki["rtn"]
        assert wiki["fineq"] < wiki["uniform"]
        assert wiki["fineq"] < wiki["owq"]

    # The paper's robustness claim: FineQ's degradation over FP16 stays
    # bounded and stable across sequence lengths (other methods swing by
    # orders of magnitude).
    fineq_series = [r[3] for r in result.rows if r[1] == "fineq"]
    fp16_series = [r[3] for r in result.rows if r[1] == "fp16"]
    ratios = [q / f for q, f in zip(fineq_series, fp16_series)]
    assert max(ratios) < 3.0
    assert max(ratios) / min(ratios) < 2.0
