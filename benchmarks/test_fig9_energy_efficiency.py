"""Bench: regenerate Fig. 9 (normalised energy efficiency)."""

from repro.experiments import fig9
from benchmarks.conftest import run_once


def test_fig9_energy_efficiency(benchmark):
    result = run_once(benchmark, fig9.run)
    print("\n" + result.to_text())

    means = result.column("Mean")
    # FineQ wins on every model and sequence length ...
    for row in result.rows:
        for value in row[1:-2]:
            assert value > 1.0
    # ... and the average sits in the paper's band (up to 1.79x average).
    overall = result.meta["overall_mean"]
    assert 1.5 < overall < 2.1
    # Larger models benefit at least as much (weights dominate traffic).
    assert means == sorted(means)
