"""Decode/prefill throughput of the serving engine vs the seed loop.

Tracks the tentpole numbers: prefill tokens/sec and decode tokens/sec at
batch sizes {1, 4, 16} on the 7B stand-in, against the sequential
one-sequence-at-a-time baseline.  The batch-16 speedup is asserted, so a
regression in the batched hot path fails the suite instead of silently
eroding the win.
"""

import numpy as np
import pytest

from repro.eval.tables import format_table
from repro.serve import (GenerationEngine, bench_prompts,
                         sequential_throughput, throughput_sweep)

BATCH_SIZES = (1, 4, 16)
NUM_PROMPTS = 16
MAX_NEW_TOKENS = 32


#: Wall-clock assertions on shared CI runners are noisy; a losing
#: measurement is re-taken up to this many times before failing.
MAX_ATTEMPTS = 5


def measure(zoo):
    model = zoo.model
    prompts = bench_prompts(model.config.vocab_size, num=NUM_PROMPTS, seed=0)
    # Warm up numpy/BLAS and the mask/rope caches outside the timed region.
    sequential_throughput(model, prompts[:1], 4)
    return throughput_sweep(model, prompts, max_new_tokens=MAX_NEW_TOKENS,
                            batch_sizes=BATCH_SIZES)


@pytest.fixture(scope="module")
def report(zoo_7b):
    return measure(zoo_7b)


def test_report_throughput_table(report):
    print("\n" + format_table(
        ["config", "batch", "prefill tok/s", "decode tok/s", "speedup"],
        report.rows(), title="decode throughput (llama-sim-7b)"))
    for point in report.points:
        assert point.decode_tokens == NUM_PROMPTS * (MAX_NEW_TOKENS - 1)
        assert point.prefill_tokens == report.baseline.prefill_tokens


def test_batch16_decode_speedup_at_least_5x(zoo_7b, report):
    best = 0.0
    for attempt in range(MAX_ATTEMPTS):
        batch16 = next(p for p in report.points if p.batch_size == 16)
        best = max(best, report.speedup(batch16))
        if best >= 5.0:
            return
        report = measure(zoo_7b)  # timing noise: measure again
    assert best >= 5.0, (
        f"batch-16 decode is only {best:.1f}x sequential after "
        f"{MAX_ATTEMPTS} attempts")


def test_batched_throughput_scales_with_batch(zoo_7b, report):
    """Larger batches should never decode slower than batch-1 serving."""
    for attempt in range(MAX_ATTEMPTS):
        by_batch = {p.batch_size: p.decode_tokens_per_s for p in report.points}
        if by_batch[16] > by_batch[1] and by_batch[4] > by_batch[1]:
            return
        report = measure(zoo_7b)
    pytest.fail(f"batched decode no faster than batch-1: {by_batch}")


def test_greedy_parity_on_zoo_model(zoo_7b):
    """The speedup is of the same computation: tokens match the seed path."""
    model = zoo_7b.model
    prompts = bench_prompts(model.config.vocab_size, num=8, seed=1)
    expected = [model.generate(p, 12, temperature=0.0) for p in prompts]
    engine = GenerationEngine(model, max_batch_size=16)
    for got, want in zip(engine.generate_batch(prompts, 12), expected):
        np.testing.assert_array_equal(got, want)
