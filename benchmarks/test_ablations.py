"""Bench: FineQ design-space ablations (cluster size, threshold, bits)."""

from repro.experiments import ablations
from benchmarks.conftest import run_once


def test_ablations(benchmark, zoo_7b):
    result = run_once(benchmark, ablations.run)
    print("\n" + result.to_text())

    rows = {r[0]: (r[1], r[2]) for r in result.rows}

    # Smaller clusters cost more index bits (2 bits of metadata amortised
    # over fewer weights).
    bits2, ppl2 = rows["cluster=2"]
    bits3, ppl3 = rows["cluster=3 (paper)"]
    bits6, ppl6 = rows["cluster=6"]
    assert bits2 > bits3
    assert bits6 <= bits3 + 0.05

    # A lax detection threshold misses outliers and hurts accuracy.
    _, ppl_lax = rows["threshold=8x"]
    _, ppl_paper = rows["threshold=4x (paper)"]
    assert ppl_lax > ppl_paper

    # FP16 protection costs many extra bits (paper Observation II: 3 bits
    # suffice for outliers) for at most a marginal accuracy gain.
    bits_fp16, ppl_fp16 = rows["protect=fp16"]
    bits_3b, ppl_3b = rows["protect=3b (paper)"]
    assert bits_fp16 > bits_3b + 1.0
    assert ppl_3b < 1.5 * ppl_fp16

    # Disabling harmonization cannot make accuracy much worse (it only
    # removes the format constraint).
    _, ppl_noharm = rows["no harmonization"]
    assert ppl_noharm <= ppl_3b * 1.05
