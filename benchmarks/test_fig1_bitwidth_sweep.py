"""Bench: regenerate Fig. 1 (perplexity vs bit-width on 7B / C4)."""

from repro.experiments import fig1
from benchmarks.conftest import run_once


def test_fig1_bitwidth_sweep(benchmark, zoo_7b):
    result = run_once(benchmark, fig1.run)
    print("\n" + result.to_text())

    ppl = {(r[0], r[1]): r[3] for r in result.rows}
    fp16 = ppl[("fp16", 16)]

    # Single-precision methods track FP16 down to 4-3 bits ...
    assert ppl[("rtn", 8)] < 1.5 * fp16
    assert ppl[("rtn", 4)] < 2.5 * fp16
    # ... and fall off a cliff at 2 bits (the paper's Fig. 1 story).
    assert ppl[("rtn", 2)] > 10 * fp16
    assert ppl[("rtn", 2)] > 8 * ppl[("rtn", 3)]
    # GPTQ degrades more gracefully but still clearly at 2 bits.
    assert ppl[("gptq", 2)] > ppl[("gptq", 4)]
    # FineQ at 2.33 bits beats every 2-bit single-precision point.
    fineq = ppl[("fineq", 2.33)]
    assert fineq < ppl[("rtn", 2)]
    assert fineq < ppl[("gptq", 2)]
    assert fineq < 3.5 * fp16
